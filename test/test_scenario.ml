(* Traffic contracts and the scenario file format. *)

open Testutil

let test_atm_cbr () =
  let a = Contracts.atm_cbr ~pcr:0.5 () in
  approx "burst = one cell" 1. (Arrival.burst a);
  approx "rate = pcr" 0.5 (Arrival.rate a);
  let jittery = Contracts.atm_cbr ~pcr:0.5 ~cdvt:2. () in
  approx "cdvt adds burst" 2. (Arrival.burst jittery)

let test_atm_vbr () =
  let a = Contracts.atm_vbr ~pcr:1. ~scr:0.25 ~mbs:5. () in
  (* Dual bucket: near 0 the PCR branch rules, long-run the SCR. *)
  approx "rate = scr" 0.25 (Arrival.rate a);
  approx "instant burst = one cell" 1. (Arrival.burst a);
  (* At the MBS point both constraints meet: mbs cells within
     (mbs-1)/pcr time. *)
  let t_mbs = 4. /. 1. in
  approx ~tol:1e-6 "mbs cells allowed at the knee" 5. (Arrival.eval a t_mbs);
  (try
     ignore (Contracts.atm_vbr ~pcr:0.2 ~scr:0.25 ~mbs:5. ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_intserv_tspec () =
  let a =
    Contracts.intserv_tspec ~peak:2. ~rate:0.5 ~bucket:10. ~max_packet:1.5
  in
  approx "burst = M" 1.5 (Arrival.burst a);
  approx "rate = r" 0.5 (Arrival.rate a);
  approx "peak region" (1.5 +. 4.) (Arrival.eval a 2.);
  approx "bucket region" (10. +. 10.) (Arrival.eval a 20.)

let sample_scenario =
  {|
# two switches, one video flow and one cross flow
server 0 rate=1
server 1 rate=1 disc=fifo name=core
flow 0 sigma=1 rho=0.15 peak=1 route=0,1 name=video deadline=9 buffer=4
flow 1 sigma=1 rho=0.2 route=0 priority=2 weight=0.5
|}

let test_parse () =
  let net = Scenario.parse sample_scenario in
  Alcotest.(check int) "servers" 2 (Network.size net);
  Alcotest.(check int) "flows" 2 (List.length (Network.flows net));
  let video = Network.flow net 0 in
  Alcotest.(check string) "name" "video" video.name;
  Alcotest.(check (option (float 1e-9))) "deadline" (Some 9.) video.deadline;
  Alcotest.(check (option (float 1e-9))) "buffer" (Some 4.) video.buffer;
  Alcotest.(check (list int)) "route" [ 0; 1 ] video.route;
  let sigma, rho, peak = Arrival.token_params video.arrival in
  approx "sigma" 1. sigma;
  approx "rho" 0.15 rho;
  approx "peak" 1. peak;
  let cross = Network.flow net 1 in
  Alcotest.(check int) "priority" 2 cross.priority;
  approx "weight" 0.5 cross.weight;
  Alcotest.(check string) "server name" "core" (Network.server net 1).name;
  (* The buffer budget survives the printer (all four deadline/buffer
     attribute combinations are exercised across the two flows). *)
  let net' = Scenario.parse (Scenario.to_string net) in
  Alcotest.(check (option (float 1e-9)))
    "buffer round-trips" (Some 4.) (Network.flow net' 0).buffer;
  Alcotest.(check (option (float 1e-9)))
    "absent buffer round-trips" None (Network.flow net' 1).buffer

let test_parse_errors () =
  let expect_error ?line content =
    try
      ignore (Scenario.parse content);
      Alcotest.fail "expected Parse_error"
    with Scenario.Parse_error (l, _) -> (
      match line with
      | Some expected -> Alcotest.(check int) "line" expected l
      | None -> ())
  in
  expect_error ~line:1 "server x rate=1";
  expect_error ~line:1 "server 0";
  expect_error ~line:1 "frobnicate 3";
  expect_error ~line:2 "server 0 rate=1\nflow 0 sigma=1 route=0";
  expect_error ~line:1 "server 0 rate=1 disc=wfq";
  (* semantic error from Network.make: unknown server in route *)
  expect_error "server 0 rate=1\nflow 0 sigma=1 rho=0.1 route=0,7"

let test_roundtrip () =
  let t = Tandem.make ~n:3 ~utilization:0.6 () in
  let net = t.network in
  let net' = Scenario.parse (Scenario.to_string net) in
  Alcotest.(check int) "servers" (Network.size net) (Network.size net');
  Alcotest.(check (list (pair int int)))
    "edges" (Network.edges net) (Network.edges net');
  (* Analyses agree on the round-tripped network. *)
  let d = Decomposed.flow_delay (Decomposed.analyze net) 0 in
  let d' = Decomposed.flow_delay (Decomposed.analyze net') 0 in
  approx "same decomposed bound" d d';
  let i =
    Integrated.flow_delay (Integrated.analyze ~strategy:(Pairing.Along_route 0) net) 0
  in
  let i' =
    Integrated.flow_delay
      (Integrated.analyze ~strategy:(Pairing.Along_route 0) net')
      0
  in
  approx "same integrated bound" i i'

let test_file_io () =
  let t = Ring.make ~n:3 ~hops:2 ~utilization:0.4 () in
  let path = Filename.temp_file "netcalc" ".scn" in
  Scenario.save path t.network;
  let net' = Scenario.load path in
  Sys.remove path;
  Alcotest.(check int) "servers" 3 (Network.size net')

let test_atm_scenario_analysis () =
  (* An ATM-flavored network built from contracts analyzes end to end. *)
  let servers = List.init 3 (fun id -> Server.make ~id ~rate:10. ()) in
  let flows =
    [
      Flow.make ~id:0 ~name:"vbr-video"
        ~arrival:(Contracts.atm_vbr ~pcr:4. ~scr:1. ~mbs:20. ())
        ~route:[ 0; 1; 2 ] ();
      Flow.make ~id:1 ~name:"cbr-voice"
        ~arrival:(Contracts.atm_cbr ~pcr:0.5 ())
        ~route:[ 0; 1 ] ();
      Flow.make ~id:2 ~name:"tspec-data"
        ~arrival:
          (Contracts.intserv_tspec ~peak:6. ~rate:2. ~bucket:12. ~max_packet:2.)
        ~route:[ 1; 2 ] ();
    ]
  in
  let net = Network.make ~servers ~flows in
  let dd = Decomposed.analyze net in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  List.iter
    (fun (f : Flow.t) ->
      let d = Decomposed.flow_delay dd f.id in
      let i = Integrated.flow_delay integ f.id in
      check_bool (f.name ^ " finite") true (Float.is_finite d);
      check_bool (f.name ^ " integrated wins or ties") true (i <= d +. 1e-9))
    flows

let prop_roundtrip_random_networks =
  qtest ~count:30 "scenario round trip preserves analyses on random nets"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (num_flows, seed) ->
      let net =
        Randomnet.generate
          { Randomnet.default with num_flows; seed; utilization = 0.7;
            rate_spread = 0.3 }
      in
      let net2 = Scenario.parse (Scenario.to_string net) in
      let d1 = Decomposed.all_flow_delays (Decomposed.analyze net) in
      let d2 = Decomposed.all_flow_delays (Decomposed.analyze net2) in
      List.for_all2
        (fun (i, a) (j, b) ->
          i = j && Float.abs (a -. b) <= 1e-6 *. Float.max 1. a)
        d1 d2)


let suite =
  ( "scenario",
    [
      test "atm cbr contract" test_atm_cbr;
      test "atm vbr contract" test_atm_vbr;
      test "intserv tspec" test_intserv_tspec;
      test "parse" test_parse;
      test "parse errors" test_parse_errors;
      test "round trip" test_roundtrip;
      prop_roundtrip_random_networks;
      test "file io" test_file_io;
      test "atm contracts analyze end to end" test_atm_scenario_analysis;
    ] )

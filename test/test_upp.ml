(* Tests for the UPP (ultimately pseudo-periodic) curve backend and the
   Curve_repr dispatch seam:

   - closed forms and eval/unroll agreement for periodic curves;
   - normalization idempotence;
   - the algebra on the eventually-affine path is bit-identical to the
     Minplus kernels (same hash-consed values), qcheck'd on the
     token-bucket / rate-latency families;
   - the windowed periodic kernels agree with an independent
     brute-force inf/sup over the exact candidate set;
   - horizon independence: the upp representation of a smoothed
     staircase keeps a constant segment count where the unrolled pwl
     result grows linearly with the horizon;
   - whole-engine cross-backend equivalence, bit for bit;
   - the namespaced Minplus result cache cannot conflate entries from
     different backends;
   - the pwl.segments.{total,max} metrics record curve workload. *)

open Testutil

let close ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b)

(* Sample points that avoid sitting exactly on jump points, where
   right-continuous evaluation makes equality boundary-sensitive. *)
let off_grid ~hi n =
  List.init n (fun i -> ((float_of_int i +. 0.37) *. hi) /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Closed forms, eval vs unroll, normalization                         *)
(* ------------------------------------------------------------------ *)

let test_staircase_closed_form () =
  let u = Upp.staircase ~step:2. ~interval:0.5 in
  Alcotest.(check int) "one stored segment" 1 (Upp.segment_count u);
  List.iter
    (fun t ->
      let expect = 2. *. (1. +. Float.of_int (int_of_float (t /. 0.5))) in
      approx (Printf.sprintf "staircase at %g" t) expect (Upp.eval u t))
    [ 0.1; 0.4; 0.7; 1.2; 5.3; 1000.2; 123456.7 ]

let gen_periodic =
  QCheck2.Gen.(
    let* rank = float_range 0.2 2. in
    let* period = float_range 0.2 2. in
    let* y0 = float_range 0. 2. in
    let* s0 = float_range 0. 2. in
    let* y1 = float_range 0. 2. in
    let* increment = float_range 0.1 3. in
    return
      (Upp.make ~rank ~period ~increment
         [ (0., y0, s0); (rank, y0 +. (s0 *. rank) +. y1, 0.) ]))

let prop_eval_matches_unroll =
  qtest ~count:300 "eval agrees with unroll on a dense grid" gen_periodic
    (fun u ->
      let hi = Upp.rank u +. (6. *. Upp.period u) in
      let w = Upp.unroll u ~horizon:hi in
      List.for_all (fun t -> close (Upp.eval u t) (Pwl.eval w t)) (off_grid ~hi 97))

let prop_normalize_idempotent =
  qtest ~count:300 "constructors normalize; normalize is idempotent"
    gen_periodic (fun u ->
      Upp.compare u (Upp.normalize u) = 0
      && Upp.compare (Upp.normalize u) (Upp.normalize (Upp.normalize u)) = 0)

let test_affine_tail_collapse () =
  (* A "periodic" law that just continues the final slope collapses to
     the eventually-affine representation. *)
  let u = Upp.make ~rank:1. ~period:1. ~increment:2. [ (0., 0., 2.) ] in
  check_bool "collapsed" true (Upp.is_affine_tail u);
  approx "rate" 2. (Upp.rate u)

(* ------------------------------------------------------------------ *)
(* Eventually-affine path: bit-identical to the Minplus kernels        *)
(* ------------------------------------------------------------------ *)

let prop_affine_conv_bit_identical =
  qtest ~count:300 "conv on affine tails = Minplus.conv, and commutes"
    QCheck2.Gen.(pair gen_concave gen_concave)
    (fun (f, g) ->
      let uf = Upp.of_pwl f and ug = Upp.of_pwl g in
      let r = Upp.to_pwl (Upp.conv uf ug) in
      Pwl.equal r (Minplus.conv f g)
      && Pwl.equal r (Upp.to_pwl (Upp.conv ug uf)))

let prop_affine_conv_associative =
  qtest ~count:200 "conv is associative on the token-bucket family"
    QCheck2.Gen.(triple gen_concave gen_concave gen_concave)
    (fun (f, g, h) ->
      let u = Upp.of_pwl in
      Pwl.equal
        (Upp.to_pwl (Upp.conv (Upp.conv (u f) (u g)) (u h)))
        (Upp.to_pwl (Upp.conv (u f) (Upp.conv (u g) (u h)))))

let prop_affine_deconv_residuation =
  qtest ~count:200 "deconv = Minplus.deconv and satisfies residuation"
    QCheck2.Gen.(pair gen_concave gen_convex)
    (fun (f, g) ->
      QCheck2.assume (Pwl.final_slope f <= Pwl.final_slope g);
      let h = Upp.to_pwl (Upp.deconv (Upp.of_pwl f) (Upp.of_pwl g)) in
      Pwl.equal h (Minplus.deconv f g)
      (* h t >= f (t + u) - g u for all u >= 0: h is an upper
         residuation of f by g. *)
      && List.for_all
           (fun t ->
             List.for_all
               (fun u ->
                 Pwl.eval h t +. 1e-6
                 >= Pwl.eval f (t +. u) -. Pwl.eval g u)
               (off_grid ~hi:20. 23))
           (off_grid ~hi:10. 19))

(* ------------------------------------------------------------------ *)
(* Periodic kernels vs brute force                                     *)
(* ------------------------------------------------------------------ *)

(* Independent reference for the envelope-convention convolution of two
   finite curves: the inf over s of fw s + gw (t - s) is attained at a
   breakpoint of fw, at t minus a breakpoint of gw, or at an interval
   end (including left limits at jumps), because the slope of the
   section s -> fw s + gw (t - s) only changes there. *)
let brute_conv fw gw t =
  let cands = ref [ 0.; t ] in
  List.iter
    (fun b -> if b > 0. && b < t then cands := b :: !cands)
    (Pwl.breakpoints fw);
  List.iter
    (fun b ->
      let s = t -. b in
      if s > 0. && s < t then cands := s :: !cands)
    (Pwl.breakpoints gw);
  List.fold_left
    (fun acc s ->
      let u = t -. s in
      let v =
        Float.min
          (Pwl.eval fw s +. Pwl.eval gw u)
          (Float.min
             (Pwl.eval_left fw s +. Pwl.eval gw u)
             (Pwl.eval fw s +. Pwl.eval_left gw u))
      in
      Float.min acc v)
    (Float.min (Pwl.eval fw t) (Pwl.eval gw t))
    !cands

let test_periodic_conv_with_rate_matches_minplus () =
  let stair = Upp.staircase ~step:1. ~interval:1. in
  let r = Upp.conv_with_rate ~rate:1.5 stair in
  check_bool "genuinely periodic result" true (not (Upp.is_affine_tail r));
  let reference =
    Minplus.conv_with_rate ~rate:1.5 (Upp.unroll stair ~horizon:64.)
  in
  List.iter
    (fun t ->
      approx
        (Printf.sprintf "smoothed staircase at %g" t)
        (Pwl.eval reference t) (Upp.eval r t))
    (off_grid ~hi:64. 257)

let test_periodic_conv_matches_bruteforce () =
  let s1 = Upp.staircase ~step:1. ~interval:1. in
  let s2 = Upp.staircase ~step:0.5 ~interval:0.5 in
  let c = Upp.conv s1 s2 in
  let fw = Upp.unroll s1 ~horizon:32. and gw = Upp.unroll s2 ~horizon:32. in
  List.iter
    (fun t ->
      approx
        (Printf.sprintf "staircase conv at %g" t)
        (brute_conv fw gw t) (Upp.eval c t))
    (off_grid ~hi:24. 193);
  (* Commutativity on the periodic path. *)
  let c' = Upp.conv s2 s1 in
  List.iter
    (fun t -> approx "periodic conv commutes" (Upp.eval c t) (Upp.eval c' t))
    (off_grid ~hi:24. 193)

let test_periodic_add_min () =
  let s1 = Upp.staircase ~step:1. ~interval:1. in
  let s2 = Upp.staircase ~step:0.5 ~interval:0.5 in
  let a = Upp.add s1 s2 and m = Upp.min_pw s1 s2 in
  List.iter
    (fun t ->
      approx "pointwise sum" (Upp.eval s1 t +. Upp.eval s2 t) (Upp.eval a t);
      approx "pointwise min"
        (Float.min (Upp.eval s1 t) (Upp.eval s2 t))
        (Upp.eval m t))
    (off_grid ~hi:20. 157)

let test_periodic_deconv_is_sup () =
  (* Output envelope of a staircase through a rate-1.5 server:
     sup_{u >= 0} f (t + u) - g u, f periodic.  Lower-bounded by every
     candidate u, and attained on the candidate set (breakpoints of f
     shifted under t, plus 0). *)
  let f = Upp.staircase ~step:1. ~interval:1. in
  let g = Upp.of_pwl (Pwl.affine ~y0:0. ~slope:1.5) in
  let h = Upp.deconv f g in
  let fw = Upp.unroll f ~horizon:128. in
  let sup_ref t =
    let cands =
      0.
      :: List.concat_map
           (fun b ->
             let u = b -. t in
             if u > 0. && t +. u <= 128. then [ u; u +. 1e-9 ] else [])
           (Pwl.breakpoints fw)
    in
    List.fold_left
      (fun acc u ->
        Float.max acc
          (Float.max
             (Pwl.eval fw (t +. u) -. (1.5 *. u))
             (Pwl.eval_left fw (t +. u) -. (1.5 *. u))))
      neg_infinity cands
  in
  List.iter
    (fun t ->
      approx ~tol:1e-6
        (Printf.sprintf "deconv at %g" t)
        (sup_ref t) (Upp.eval h t))
    (off_grid ~hi:16. 101)

(* ------------------------------------------------------------------ *)
(* Horizon independence                                                *)
(* ------------------------------------------------------------------ *)

let test_horizon_independent_size () =
  let stair = Upp.staircase ~step:1. ~interval:1. in
  let upp_r = Upp.conv_with_rate ~rate:1.5 stair in
  check_bool "upp result is small" true (Upp.segment_count upp_r <= 4);
  let pwl_sizes =
    List.map
      (fun h ->
        let horizon = float_of_int h in
        let r = Minplus.conv_with_rate ~rate:1.5 (Upp.unroll stair ~horizon) in
        (* Same function, sampled. *)
        List.iter
          (fun t -> approx "backends agree" (Pwl.eval r t) (Upp.eval upp_r t))
          (off_grid ~hi:horizon 61);
        List.length (Pwl.segments r))
      [ 64; 512; 4096 ]
  in
  (match pwl_sizes with
  | [ a; b; c ] ->
      check_bool "pwl result grows with the horizon" true (a < b && b < c);
      check_bool "pwl result is horizon-sized" true (c >= 4096)
  | _ -> assert false);
  check_bool "upp result did not grow" true (Upp.segment_count upp_r <= 4)

(* ------------------------------------------------------------------ *)
(* Cross-backend engine equivalence                                    *)
(* ------------------------------------------------------------------ *)

let test_cross_backend_bit_identical () =
  let saved = Options.curve_backend () in
  Fun.protect ~finally:(fun () -> Options.set_curve_backend saved)
  @@ fun () ->
  let t = Tandem.make ~n:4 ~utilization:0.6 ~sigma:1. ~peak:1. () in
  let run b =
    Options.set_curve_backend b;
    Engine.compare_all ~strategy:(Pairing.Along_route 0) t.Tandem.network 0
  in
  let a = run `Pwl and b = run `Upp in
  Alcotest.(check int) "flow" a.Engine.flow b.Engine.flow;
  List.iter2
    (fun (name, u) v ->
      Alcotest.(check int64) name (Int64.bits_of_float u)
        (Int64.bits_of_float v))
    [
      ("decomposed", a.decomposed);
      ("service_curve", a.service_curve);
      ("integrated", a.integrated);
      ("fifo_theta", a.fifo_theta);
      ("decomposed_backlog", a.decomposed_backlog);
      ("integrated_backlog", a.integrated_backlog);
    ]
    [
      b.decomposed; b.service_curve; b.integrated; b.fifo_theta;
      b.decomposed_backlog; b.integrated_backlog;
    ]

let test_backend_of_string () =
  (match Options.curve_backend_of_string "pwl" with
  | Ok `Pwl -> ()
  | _ -> Alcotest.fail "pwl should parse");
  (match Options.curve_backend_of_string "upp" with
  | Ok `Upp -> ()
  | _ -> Alcotest.fail "upp should parse");
  match Options.curve_backend_of_string "nancy" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend should be rejected"

(* ------------------------------------------------------------------ *)
(* Cache namespacing                                                   *)
(* ------------------------------------------------------------------ *)

let test_cache_namespacing () =
  let was = Minplus.cache_enabled () in
  Minplus.set_cache_enabled true;
  Fun.protect ~finally:(fun () -> Minplus.set_cache_enabled was)
  @@ fun () ->
  Minplus.cache_clear ();
  let f = Pwl.affine ~y0:1.25 ~slope:1.125 in
  let g = Pwl.affine ~y0:2.5 ~slope:0.625 in
  let a = Pwl.constant 1. and b = Pwl.constant 2. in
  (* Same operand pair, different namespaces: must not conflate. *)
  let r1 = Minplus.cached_op `Conv ~ns:11 f g (fun () -> a) in
  let r2 = Minplus.cached_op `Conv ~ns:22 f g (fun () -> b) in
  check_bool "first namespace stores its result" true (Pwl.equal r1 a);
  check_bool "second namespace misses the first" true (Pwl.equal r2 b);
  (* Same namespace, same operands: hit (compute not consulted). *)
  let r1' = Minplus.cached_op `Conv ~ns:11 f g (fun () -> b) in
  check_bool "same namespace hits" true (Pwl.equal r1' a);
  (* Conv and deconv namespaces are distinct caches. *)
  let r3 = Minplus.cached_op `Deconv ~ns:11 f g (fun () -> b) in
  check_bool "deconv cache is separate" true (Pwl.equal r3 b);
  (* Namespace 0 is reserved for the pwl kernel itself. *)
  (try
     ignore (Minplus.cached_op `Conv ~ns:0 f g (fun () -> a));
     Alcotest.fail "namespace 0 must be rejected"
   with Invalid_argument _ -> ());
  (* End to end: a kernel-level conv of the same operand pair must not
     be served one of the namespaced entries. *)
  let kernel = Minplus.conv f g in
  check_bool "kernel result is computed, not conflated" true
    ((not (Pwl.equal kernel a)) && not (Pwl.equal kernel b))

(* ------------------------------------------------------------------ *)
(* Segment metrics                                                     *)
(* ------------------------------------------------------------------ *)

let test_segment_metrics () =
  Obs.enable ();
  Metrics.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Metrics.reset ())
  @@ fun () ->
  let n = 50 in
  ignore
    (Pwl.make
       (List.init n (fun k -> (float_of_int k, float_of_int (k + 1), 0.))));
  let snap = Metrics.snapshot () in
  let total =
    Option.value ~default:0
      (List.assoc_opt "pwl.segments.total" snap.Metrics.counters)
  in
  let peak =
    Option.value ~default:0
      (List.assoc_opt "pwl.segments.max" snap.Metrics.peaks)
  in
  check_bool "segments.total counts the curve" true (total >= n);
  check_bool "segments.max saw the curve" true (peak >= n)

let suite =
  ( "upp",
    [
      test "staircase closed form" test_staircase_closed_form;
      prop_eval_matches_unroll;
      prop_normalize_idempotent;
      test "affine-continuation law collapses" test_affine_tail_collapse;
      prop_affine_conv_bit_identical;
      prop_affine_conv_associative;
      prop_affine_deconv_residuation;
      test "conv_with_rate on a staircase matches Minplus"
        test_periodic_conv_with_rate_matches_minplus;
      test "periodic conv matches brute force"
        test_periodic_conv_matches_bruteforce;
      test "periodic add/min are pointwise" test_periodic_add_min;
      test "periodic deconv is the exact sup" test_periodic_deconv_is_sup;
      test "upp size is horizon-independent" test_horizon_independent_size;
      test "engines are bit-identical across backends"
        test_cross_backend_bit_identical;
      test "backend names parse" test_backend_of_string;
      test "result cache cannot conflate backends" test_cache_namespacing;
      test "pwl.segments metrics record workload" test_segment_metrics;
    ] )

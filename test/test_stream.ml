(* Tests for the streaming frontier engine (Propagation_stream), the
   antichain decomposition (Network.levels) and the scenario-corpus
   generators.

   The streaming engine's contract is bit-identity: on every
   feedforward network it must produce exactly the floats of the
   table-based Decomposed engine, at any jobs count.  All comparisons
   here go through Int64.bits_of_float, not a tolerance. *)

open Testutil

let bits = Int64.bits_of_float

let same_delays msg expected actual =
  Alcotest.(check (list (pair int int64)))
    msg
    (List.map (fun (id, d) -> (id, bits d)) expected)
    (List.map (fun (id, d) -> (id, bits d)) actual)

let decomposed_delays ?options net =
  let dd = Decomposed.analyze ?options net in
  Network.flows net
  |> List.map (fun (f : Flow.t) -> (f.id, Decomposed.flow_delay dd f.id))
  |> List.sort compare

let stream_delays ?options ?jobs net =
  Propagation_stream.all_flow_delays
    (Propagation_stream.analyze ?options ?jobs net)

(* --- bit-identity vs the table-based engine ----------------------- *)

let test_tandem_identity () =
  List.iter
    (fun n ->
      List.iter
        (fun u ->
          let t = Tandem.make ~n ~utilization:u () in
          same_delays
            (Printf.sprintf "tandem n=%d u=%g" n u)
            (decomposed_delays t.network)
            (stream_delays t.network))
        [ 0.3; 0.6; 0.9 ])
    [ 2; 4; 6; 8 ]

let test_tandem_identity_sharpened () =
  let t = Tandem.make ~n:6 ~utilization:0.7 () in
  let options = Options.sharpened in
  same_delays "tandem n=6 u=0.7 link-cap"
    (decomposed_delays ~options t.network)
    (stream_delays ~options t.network)

let test_randomnet_identity () =
  List.iter
    (fun seed ->
      let net =
        Randomnet.generate
          {
            Randomnet.default with
            layers = 5;
            per_layer = 3;
            num_flows = 20;
            utilization = 0.7;
            rate_spread = 0.2;
            seed;
          }
      in
      same_delays
        (Printf.sprintf "randomnet seed=%d" seed)
        (decomposed_delays net) (stream_delays net))
    (List.init 8 (fun i -> 1 + i))

let test_overload_identity () =
  (* An unstable middle server poisons downstream hops; the streaming
     engine must replicate Decomposed's infinities exactly. *)
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.7 () in
  let net =
    Network.make
      ~servers:
        [
          Server.make ~id:0 ~rate:2. ();
          Server.make ~id:1 ~rate:1. () (* 0.7 + 0.7 > 1: unstable *);
          Server.make ~id:2 ~rate:2. ();
        ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival ~route:[ 0; 1; 2 ] ();
          Flow.make ~id:1 ~arrival ~route:[ 1; 2 ] ();
          Flow.make ~id:2 ~arrival ~route:[ 0 ] ();
        ]
  in
  let expected = decomposed_delays net in
  check_bool "overload produces infinities" true
    (List.exists (fun (_, d) -> d = infinity) expected);
  same_delays "overloaded net" expected (stream_delays net)

(* --- determinism across jobs counts ------------------------------- *)

let test_jobs_determinism () =
  (* >= 10^4 servers on each corpus family: the sharded pass must be
     byte-identical between a sequential and a parallel pool. *)
  List.iter
    (fun family ->
      let net =
        Corpus.generate ~family ~target_servers:10_000 ~seed:11
      in
      check_bool
        (Corpus.to_string family ^ " is >= 10^4 servers")
        true
        (Network.size net >= 10_000);
      same_delays
        (Corpus.to_string family ^ " jobs 1 = jobs 4")
        (stream_delays ~jobs:1 net)
        (stream_delays ~jobs:4 net))
    Corpus.all

(* --- frontier accounting ------------------------------------------ *)

let test_frontier_bounded () =
  (* A deep topology: the live frontier must stay a small fraction of
     the total (flow, server) pairs a table-based pass would keep. *)
  let t = Tandem.make ~n:48 ~utilization:0.6 () in
  let s = Propagation_stream.analyze t.network in
  let st = Propagation_stream.frontier_stats s in
  check_bool "pairs counted" true
    (st.total_pairs = Network.total_hop_count t.network);
  check_bool "all pairs evicted" true (st.evicted = st.total_pairs);
  check_bool
    (Printf.sprintf "peak %d << pairs %d" st.peak_live st.total_pairs)
    true
    (4 * st.peak_live < st.total_pairs);
  check_bool "widest antichain bounds nothing upward" true
    (st.widest_antichain <= Network.size t.network)

let test_frontier_metrics () =
  Obs.enable ();
  Metrics.reset ();
  let t = Tandem.make ~n:8 ~utilization:0.5 () in
  ignore (Propagation_stream.analyze t.network);
  let snap = Metrics.snapshot () in
  let evicted =
    Option.value ~default:0
      (List.assoc_opt "propagation.frontier.evicted" snap.Metrics.counters)
  in
  let peak =
    Option.value ~default:0
      (List.assoc_opt "propagation.frontier.peak" snap.Metrics.peaks)
  in
  Obs.disable ();
  check_bool "evicted counter > 0" true (evicted > 0);
  check_bool "peak gauge > 0" true (peak > 0)

(* --- antichain levels --------------------------------------------- *)

let test_levels () =
  let net =
    Randomnet.generate
      { Randomnet.default with layers = 6; per_layer = 2; num_flows = 16 }
  in
  let levels = Network.levels net in
  let level_of = Hashtbl.create 64 in
  List.iteri
    (fun i sids -> List.iter (fun s -> Hashtbl.replace level_of s i) sids)
    levels;
  Alcotest.(check int)
    "levels partition the servers" (Network.size net)
    (List.length (List.concat levels));
  List.iter
    (fun (a, b) ->
      check_bool
        (Printf.sprintf "edge %d->%d crosses levels upward" a b)
        true
        (Hashtbl.find level_of a < Hashtbl.find level_of b))
    (Network.edges net);
  Alcotest.(check int)
    "widest antichain"
    (List.fold_left (fun acc l -> max acc (List.length l)) 0 levels)
    (Network.widest_antichain net)

let test_levels_cyclic () =
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.1 () in
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. (); Server.make ~id:1 ~rate:1. () ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival ~route:[ 0; 1 ] ();
          Flow.make ~id:1 ~arrival ~route:[ 1; 0 ] ();
        ]
  in
  match Network.levels net with
  | _ -> Alcotest.fail "expected Network.Cyclic"
  | exception Network.Cyclic -> ()

let test_restrict () =
  let t = Tandem.make ~n:4 ~utilization:0.6 () in
  let sub = Network.restrict t.network ~flow_ids:[ 0 ] in
  Alcotest.(check int) "one flow kept" 1 (List.length (Network.flows sub));
  let f = Network.flow sub 0 in
  Alcotest.(check (list int))
    "servers are the kept route"
    (List.sort compare f.route)
    (List.sort compare
       (List.map (fun (s : Server.t) -> s.id) (Network.servers sub)));
  (* With cross traffic stripped, the lone flow's bound is finite and
     the sub-network analysis agrees between engines. *)
  same_delays "restricted identity" (decomposed_delays sub)
    (stream_delays sub)

(* --- corpus generators -------------------------------------------- *)

let flow_fingerprint (f : Flow.t) = (f.id, f.route, Flow.rate f, Flow.burst f)

let test_generators_deterministic () =
  List.iter
    (fun family ->
      let gen () = Corpus.generate ~family ~target_servers:600 ~seed:5 in
      let a = gen () and b = gen () in
      Alcotest.(check (list (pair int (pair (list int) (pair (float 0.) (float 0.)))))
        )
        (Corpus.to_string family ^ " same seed, same flows")
        (List.map
           (fun f ->
             let id, r, rho, sg = flow_fingerprint f in
             (id, (r, (rho, sg))))
           (Network.flows a))
        (List.map
           (fun f ->
             let id, r, rho, sg = flow_fingerprint f in
             (id, (r, (rho, sg))))
           (Network.flows b));
      let c = Corpus.generate ~family ~target_servers:600 ~seed:6 in
      check_bool
        (Corpus.to_string family ^ " different seed, different draws")
        false
        (List.map flow_fingerprint (Network.flows a)
        = List.map flow_fingerprint (Network.flows c)))
    Corpus.all

let test_generators_feedforward_and_stable () =
  List.iter
    (fun family ->
      let net = Corpus.generate ~family ~target_servers:600 ~seed:3 in
      check_bool (Corpus.to_string family ^ " feedforward") true
        (Network.is_feedforward net);
      check_bool (Corpus.to_string family ^ " stable") true
        (Network.stable net);
      check_bool
        (Corpus.to_string family ^ " near target size")
        true
        (let n = Network.size net in
         n >= 300 && n <= 1200))
    Corpus.all

let test_generator_sizes () =
  Alcotest.(check int)
    "leaf-spine size formula" 20
    (Network.size
       (Leaf_spine.generate { Leaf_spine.default with seed = 1 }));
  Alcotest.(check int)
    "fat-tree size formula"
    (Fat_tree.size Fat_tree.default)
    (Network.size (Fat_tree.generate Fat_tree.default));
  Alcotest.(check int)
    "edge-cloud size formula"
    (Edge_cloud.size Edge_cloud.default)
    (Network.size (Edge_cloud.generate Edge_cloud.default).Edge_cloud.net)

let test_edge_cloud_latency () =
  let g = Edge_cloud.generate Edge_cloud.default in
  List.iter
    (fun (f : Flow.t) ->
      let hops = List.length f.route in
      let base = List.assoc f.id g.Edge_cloud.base_latency in
      let p = Edge_cloud.default in
      let expected_local = p.Edge_cloud.hop_latency *. float_of_int (hops - 1) in
      let offloaded = hops > p.Edge_cloud.tiers in
      approx
        (Printf.sprintf "flow %d wire latency" f.id)
        (if offloaded then expected_local +. p.Edge_cloud.rtt
         else expected_local)
        base;
      approx "total = base + queueing"
        (base +. 1.5)
        (Edge_cloud.total_latency g ~queueing:1.5 f.id))
    (Network.flows g.Edge_cloud.net)

let test_dot_streaming () =
  (* The streamed writer and the string writer must emit the same
     bytes. *)
  let net = Corpus.generate ~family:Corpus.Fat_tree ~target_servers:36 ~seed:2 in
  let s = Dot.to_dot net in
  let tmp = Filename.temp_file "netcalc-test" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      Dot.output_net oc net;
      close_out oc;
      let ic = open_in_bin tmp in
      let len = in_channel_length ic in
      let streamed = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "streamed = string export" s streamed)

let suite =
  ( "stream",
    [
      test "tandem bit-identity (fig4-6 grid)" test_tandem_identity;
      test "tandem bit-identity (link-cap)" test_tandem_identity_sharpened;
      test "randomnet bit-identity" test_randomnet_identity;
      test "overload bit-identity" test_overload_identity;
      test "jobs 1 = jobs 4 at 10^4 servers" test_jobs_determinism;
      test "frontier bounded on a deep tandem" test_frontier_bounded;
      test "frontier metrics published" test_frontier_metrics;
      test "antichain levels" test_levels;
      test "levels reject cycles" test_levels_cyclic;
      test "restrict induced sub-network" test_restrict;
      test "corpus generators deterministic" test_generators_deterministic;
      test "corpus feedforward + stable" test_generators_feedforward_and_stable;
      test "generator size formulas" test_generator_sizes;
      test "edge-cloud wire latency" test_edge_cloud_latency;
      test "dot streaming equals string export" test_dot_streaming;
    ] )
